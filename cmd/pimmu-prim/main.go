// Command pimmu-prim runs one PrIM workload end to end (input transfer,
// DPU kernel, output transfer) on the baseline and on PIM-MMU, printing
// the Fig. 16-style breakdown. It also runs the workload's functional
// verification (DPU-partitioned kernel vs host reference).
//
// Usage:
//
//	pimmu-prim [-scale F] [-list] <workload>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/prim"
	"repro/internal/system"
)

func main() {
	scale := flag.Float64("scale", 1.0/64, "problem-size scale factor (1.0 = paper size)")
	list := flag.Bool("list", false, "list workloads")
	flag.Parse()

	if *list {
		for _, w := range prim.Suite() {
			fmt.Printf("  %-9s in %4d KiB/core, out %4d KiB/core, baseline transfer share %.0f%%\n",
				w.Name, w.InBytesPerCore>>10, w.OutBytesPerCore>>10,
				100*w.BaselineTransferFraction)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pimmu-prim [-scale F] [-list] <workload>")
		os.Exit(2)
	}
	w, ok := prim.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "pimmu-prim: unknown workload %q (try -list)\n", flag.Arg(0))
		os.Exit(2)
	}

	fmt.Printf("verifying %s DPU kernel against host reference... ", w.Name)
	if err := w.Verify(64, 0xBEEF); err != nil {
		fmt.Println("FAILED")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("ok")

	for _, d := range []system.Design{system.Base, system.PIMMMU} {
		s := system.MustNew(system.DefaultConfig(d))
		ph := prim.RunEndToEnd(s, w, *scale)
		fmt.Printf("%-12v in %10v | kernel %10v | out %10v | total %10v (transfer %4.1f%%)\n",
			d, ph.In, ph.Kernel, ph.Out, ph.Total(), 100*ph.TransferFraction())
	}
}
