// Command pimmu-lint enforces the harness layering rule behind the
// plan/compute/render split: inside internal/harness, only the compute
// phase (runner.go and compute*.go) may import repro/internal/system.
// Plans are pure enumeration and renders are pure text — a renderer
// that can reach a live machine could silently re-simulate, breaking
// the warm-cache-equals-cold-compute contract the tier-1 suite checks
// byte for byte.
//
// Usage:
//
//	pimmu-lint [DIR]
//
// DIR defaults to internal/harness. Violations print one per line and
// exit non-zero; `make lint` runs this after go vet.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// systemImport is the package the rule guards.
const systemImport = "repro/internal/system"

func main() {
	dir := "internal/harness"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	bad, err := violations(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-lint: %v\n", err)
		os.Exit(2)
	}
	for _, v := range bad {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "pimmu-lint: %d violation(s): only runner.go and compute*.go may import %s\n",
			len(bad), systemImport)
		os.Exit(1)
	}
}

// computeAllowed reports whether a harness file may import the system
// package: the Runner machinery and the compute phase, nothing else.
// Test files are exempt — they exercise all three phases.
func computeAllowed(name string) bool {
	if strings.HasSuffix(name, "_test.go") {
		return true
	}
	return name == "runner.go" || strings.HasPrefix(name, "compute")
}

// violations scans dir's Go files (imports only, no type checking) and
// reports every file outside the compute phase that imports the system
// package.
func violations(dir string) ([]string, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bad []string
	fset := token.NewFileSet()
	for _, f := range files {
		name := f.Name()
		if f.IsDir() || !strings.HasSuffix(name, ".go") || computeAllowed(name) {
			continue
		}
		path := filepath.Join(dir, name)
		parsed, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range parsed.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == systemImport {
				bad = append(bad, fmt.Sprintf("%s: imports %s outside the compute phase", path, systemImport))
			}
		}
	}
	return bad, nil
}
