// Command pimmu-lint enforces the repository's import layering rules —
// the boundaries the type system cannot express:
//
//   - internal/harness: only the compute phase (runner.go and
//     compute*.go) may import repro/internal/system. Plans are pure
//     enumeration and renders are pure text — a renderer that can reach
//     a live machine could silently re-simulate, breaking the
//     warm-cache-equals-cold-compute contract the tier-1 suite checks
//     byte for byte.
//
//   - internal/serve: never imports repro/internal/system. The server
//     reaches simulation only through the harness Runner, so every
//     serving path inherits the plan/compute/render split and its
//     determinism contract instead of poking machines directly.
//
//   - internal/serve/api: imports nothing from this repository at all.
//     The wire contract stays pure so CLIs, the server, and future
//     distributed-sweep workers can all speak it without dragging in
//     the simulator.
//
// Usage:
//
//	pimmu-lint [DIR]
//
// With no argument every rule runs against its own directory; passing
// DIR runs the harness compute-phase rule against that directory
// instead. Violations print one per line and exit non-zero; `make
// lint` runs this after go vet.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// systemImport is the package the harness and serve rules guard.
const systemImport = "repro/internal/system"

// repoImportPrefix marks any import from this repository — the api
// purity rule bans the whole namespace.
const repoImportPrefix = "repro/"

// rule is one import-layering constraint: in dir, every non-test file
// outside allowed must not import anything banned.
type rule struct {
	dir     string
	allowed func(name string) bool
	banned  func(importPath string) bool
	explain string // one line appended to the violation count
}

// rules are the repository's layering constraints, checked in order.
var rules = []rule{
	{
		dir:     "internal/harness",
		allowed: computeAllowed,
		banned:  func(p string) bool { return p == systemImport },
		explain: "only runner.go and compute*.go may import " + systemImport,
	},
	{
		dir:     "internal/serve",
		allowed: func(name string) bool { return strings.HasSuffix(name, "_test.go") },
		banned:  func(p string) bool { return p == systemImport },
		explain: "internal/serve reaches simulation only through the harness Runner, never " + systemImport,
	},
	{
		dir:     "internal/serve/api",
		allowed: func(name string) bool { return false },
		banned:  func(p string) bool { return strings.HasPrefix(p, repoImportPrefix) },
		explain: "internal/serve/api is the pure wire contract: no repro/ imports at all",
	},
}

func main() {
	checks := rules
	if len(os.Args) > 1 {
		checks = []rule{{
			dir:     os.Args[1],
			allowed: computeAllowed,
			banned:  rules[0].banned,
			explain: rules[0].explain,
		}}
	}
	exit := 0
	for _, r := range checks {
		bad, err := violations(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-lint: %v\n", err)
			os.Exit(2)
		}
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, v)
		}
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "pimmu-lint: %d violation(s): %s\n", len(bad), r.explain)
			exit = 1
		}
	}
	os.Exit(exit)
}

// computeAllowed reports whether a harness file may import the system
// package: the Runner machinery and the compute phase, nothing else.
// Test files are exempt — they exercise all three phases.
func computeAllowed(name string) bool {
	if strings.HasSuffix(name, "_test.go") {
		return true
	}
	return name == "runner.go" || strings.HasPrefix(name, "compute")
}

// violations scans the rule's directory (imports only, no type
// checking) and reports every file outside the allowed set with a
// banned import.
func violations(r rule) ([]string, error) {
	files, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, err
	}
	var bad []string
	fset := token.NewFileSet()
	for _, f := range files {
		name := f.Name()
		if f.IsDir() || !strings.HasSuffix(name, ".go") || r.allowed(name) {
			continue
		}
		path := filepath.Join(r.dir, name)
		parsed, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range parsed.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if r.banned(p) {
				bad = append(bad, fmt.Sprintf("%s: imports %s, which this layer bans", path, p))
			}
		}
	}
	return bad, nil
}
