package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestComputeAllowed(t *testing.T) {
	for name, want := range map[string]bool{
		"runner.go":       true,
		"compute.go":      true,
		"compute_figs.go": true,
		"harness_test.go": true,
		"render.go":       false,
		"harness.go":      false,
		"axes.go":         false,
		"results.go":      false,
	} {
		if got := computeAllowed(name); got != want {
			t.Errorf("computeAllowed(%q) = %v, want %v", name, got, want)
		}
	}
}

// The real harness must satisfy its own layering rule.
func TestHarnessIsClean(t *testing.T) {
	bad, err := violations(filepath.Join("..", "..", "internal", "harness"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Error(v)
	}
}

func TestViolationDetected(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("render.go", "package harness\n\nimport _ \"repro/internal/system\"\n")
	write("compute.go", "package harness\n\nimport _ \"repro/internal/system\"\n")
	write("axes.go", "package harness\n\nimport _ \"fmt\"\n")
	bad, err := violations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("violations = %v, want exactly the render.go one", bad)
	}
}
