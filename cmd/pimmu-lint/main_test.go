package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestComputeAllowed(t *testing.T) {
	for name, want := range map[string]bool{
		"runner.go":       true,
		"compute.go":      true,
		"compute_figs.go": true,
		"harness_test.go": true,
		"render.go":       false,
		"harness.go":      false,
		"axes.go":         false,
		"results.go":      false,
	} {
		if got := computeAllowed(name); got != want {
			t.Errorf("computeAllowed(%q) = %v, want %v", name, got, want)
		}
	}
}

// reroot points a rule's directory at the repository root, which is two
// levels up from this package's test working directory.
func reroot(r rule) rule {
	r.dir = filepath.Join("..", "..", r.dir)
	return r
}

// The real tree must satisfy every rule it ships.
func TestRepositoryIsClean(t *testing.T) {
	for _, r := range rules {
		bad, err := violations(reroot(r))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range bad {
			t.Error(v)
		}
	}
}

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestHarnessViolationDetected(t *testing.T) {
	r := rules[0]
	r.dir = writeFiles(t, map[string]string{
		"render.go":  "package harness\n\nimport _ \"repro/internal/system\"\n",
		"compute.go": "package harness\n\nimport _ \"repro/internal/system\"\n",
		"axes.go":    "package harness\n\nimport _ \"fmt\"\n",
	})
	bad, err := violations(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "render.go") {
		t.Fatalf("violations = %v, want exactly the render.go one", bad)
	}
}

func TestServeViolationDetected(t *testing.T) {
	r := rules[1]
	r.dir = writeFiles(t, map[string]string{
		"server.go":     "package serve\n\nimport _ \"repro/internal/system\"\n",
		"job.go":        "package serve\n\nimport _ \"repro/internal/harness\"\n",
		"serve_test.go": "package serve\n\nimport _ \"repro/internal/system\"\n",
	})
	bad, err := violations(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "server.go") {
		t.Fatalf("violations = %v, want exactly the server.go one", bad)
	}
}

func TestAPIPurityViolationDetected(t *testing.T) {
	r := rules[2]
	r.dir = writeFiles(t, map[string]string{
		"api.go":      "package api\n\nimport _ \"repro/internal/harness\"\n",
		"api_test.go": "package api\n\nimport _ \"repro/internal/resultcache\"\n",
		"pure.go":     "package api\n\nimport _ \"encoding/json\"\n",
	})
	bad, err := violations(r)
	if err != nil {
		t.Fatal(err)
	}
	// The purity rule has no test exemption: the contract package must
	// stay dependency-free even in its tests.
	if len(bad) != 2 {
		t.Fatalf("violations = %v, want the api.go and api_test.go ones", bad)
	}
}
