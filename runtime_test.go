package pimmmu_test

import (
	"bytes"
	"testing"

	pimmmu "repro"
)

func TestXferBuilderRoundTrip(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	const per = 1024
	// Non-contiguous core subset, reversed binding order, shared buffer.
	cores := []int{40, 7, 99, 3}
	buf := s.Malloc(len(cores) * per)
	for i := range buf.Data {
		buf.Data[i] = byte(i * 13)
	}
	x := s.PrepareXfer()
	for i, c := range cores {
		x.Bind(c, buf, uint64(i)*per)
	}
	if x.Len() != len(cores) {
		t.Fatalf("Len = %d", x.Len())
	}
	if _, err := x.PushToPIM(per, 0); err != nil {
		t.Fatal(err)
	}
	for i, c := range cores {
		want := buf.Data[i*per : (i+1)*per]
		if got := s.MRAM(c, 0, per); !bytes.Equal(got, want) {
			t.Fatalf("core %d MRAM mismatch", c)
		}
	}
	// Pull back into a different buffer through a fresh builder.
	out := s.Malloc(len(cores) * per)
	y := s.PrepareXfer()
	for i, c := range cores {
		y.Bind(c, out, uint64(i)*per)
	}
	if _, err := y.PushFromPIM(per, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Data, buf.Data) {
		t.Fatal("staged round trip corrupted data")
	}
}

func TestXferBuilderErrors(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	if _, err := s.PrepareXfer().PushToPIM(64, 0); err == nil {
		t.Error("empty builder accepted")
	}
	buf := s.Malloc(64)
	x := s.PrepareXfer().Bind(0, buf, 32)
	if _, err := x.PushToPIM(64, 0); err == nil {
		t.Error("slice beyond buffer accepted")
	}
	y := s.PrepareXfer().Bind(0, nil, 0)
	if _, err := y.PushToPIM(64, 0); err == nil {
		t.Error("nil buffer accepted")
	}
	z := s.PrepareXfer().Bind(0, buf, 0).Bind(0, buf, 0)
	if _, err := z.PushToPIM(64, 0); err == nil {
		t.Error("duplicate core accepted")
	}
}

func TestXferBuilderSingleUse(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	buf := s.Malloc(64)
	x := s.PrepareXfer().Bind(0, buf, 0)
	if _, err := x.PushToPIM(64, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := x.PushToPIM(64, 0); err == nil {
		t.Error("builder reuse accepted")
	}
}
