// Result-cache correctness tests: a cache-hit rerun of an experiment
// must be byte-identical to a cold run — across worker counts and
// shard/core-lane topologies — and the cache must reject (and silently
// recompute past) corrupt, truncated and wrong-code-version entries.
// These are the properties that make caching sound on top of the
// determinism contract the rest of this suite pins.
package pimmmu_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/system"
)

// cachedExperiments are the tier-1 representatives: fig8 caches plain
// floats; replay caches a struct carrying a latency histogram, covering
// the structured-payload round trip. The slow tier's experiment-wide
// audits extend byte-identity to every experiment uncached.
var cachedExperiments = []string{"fig8", "replay"}

// renderWith renders one experiment through a fresh Runner with the
// given sweep/topology settings, fronted by store when non-nil.
func renderWith(t *testing.T, store *resultcache.Store, name string, workers, shards, coreLanes int) []byte {
	t.Helper()
	e, ok := harness.ByName(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	r := &harness.Runner{Shards: shards, CoreLanes: coreLanes, Workers: workers}
	if store != nil {
		r.Cache = store
	}
	var b bytes.Buffer
	r.Run(e, &b, harness.Quick)
	return b.Bytes()
}

// openCache builds a fresh store over dir.
func openCache(t *testing.T, dir string, mode resultcache.Mode) *resultcache.Store {
	t.Helper()
	store, err := resultcache.Open(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// pinVersion makes the code-version stamp deterministic for one test.
func pinVersion(t *testing.T, v string) {
	t.Helper()
	resultcache.SetCodeVersion(v)
	t.Cleanup(func() { resultcache.SetCodeVersion("") })
}

// TestCacheHitRerunByteIdentical is the acceptance property: with a warm
// cache, a rerun serves every job from disk (hits == job count) and the
// rendered tables are byte-identical to the cold run, at every worker
// count.
func TestCacheHitRerunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	for _, name := range cachedExperiments {
		t.Run(name, func(t *testing.T) {
			pinVersion(t, "cache-test-v1")
			store := openCache(t, t.TempDir(), resultcache.ReadWrite)
			cold := renderWith(t, store, name, 1, 0, 0)
			st := store.Stats()
			if st.Hits != 0 || st.Misses == 0 || st.Stores != st.Misses {
				t.Fatalf("cold-run stats: %+v", st)
			}
			jobs := st.Misses
			for _, workers := range []int{1, 4, 8} {
				before := store.Stats()
				warm := renderWith(t, store, name, workers, 0, 0)
				if !bytes.Equal(cold, warm) {
					t.Fatalf("workers=%d: warm run differs from cold\n--- cold ---\n%s--- warm ---\n%s",
						workers, cold, warm)
				}
				d := store.Stats().Sub(before)
				if d.Hits != jobs || d.Misses != 0 {
					t.Fatalf("workers=%d: warm-run delta %+v, want %d hits", workers, d, jobs)
				}
			}
		})
	}
}

// TestCacheCrossTopologyReuse pins the result-neutral fingerprint: the
// lane-topology knobs are masked out of the cache key, so entries
// warmed at shards=1 serve every sharded topology — different shard
// counts, core-lane counts, auto — with zero re-simulation and
// byte-identical output (the cross-shard invariant sharded_test.go
// proves is what makes the sharing sound). The plain engine (shards=0)
// keeps its own keys: fig8 is a CPU-streaming workload where it
// legitimately orders same-instant ties differently — see
// system.Config.Shards — so plain and sharded must never alias.
func TestCacheCrossTopologyReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	store := openCache(t, t.TempDir(), resultcache.ReadWrite)
	serial := renderWith(t, store, "fig8", 4, 1, 0)
	jobs := store.Stats().Misses
	for _, topo := range []struct{ shards, coreLanes int }{
		{2, 4}, {4, 2}, {system.Auto, system.Auto},
	} {
		before := store.Stats()
		got := renderWith(t, store, "fig8", 4, topo.shards, topo.coreLanes)
		if !bytes.Equal(serial, got) {
			t.Fatalf("shards=%d core-lanes=%d: warm output diverged from serial sharded engine",
				topo.shards, topo.coreLanes)
		}
		d := store.Stats().Sub(before)
		if d.Hits != jobs || d.Misses != 0 {
			t.Fatalf("shards=%d core-lanes=%d: delta %+v, want %d hits and no re-simulation",
				topo.shards, topo.coreLanes, d, jobs)
		}
	}
	// The plain engine is a different engine class: fresh misses, and
	// the sharded entries stay intact underneath.
	before := store.Stats()
	renderWith(t, store, "fig8", 4, 0, 0)
	if d := store.Stats().Sub(before); d.Hits != 0 || d.Misses != jobs {
		t.Fatalf("plain-engine delta %+v, want %d fresh misses", d, jobs)
	}
	before = store.Stats()
	if warm := renderWith(t, store, "fig8", 4, 1, 0); !bytes.Equal(serial, warm) {
		t.Fatal("serial-sharded rerun no longer matches")
	}
	if d := store.Stats().Sub(before); d.Hits != jobs {
		t.Fatalf("serial-sharded entries lost: %+v", d)
	}
}

// TestCacheWarmShards1ServesShards4 is the headline acceptance path for
// result-neutral keys, on the two experiments the nightly render job
// publishes: a cache warmed at -shards 1 replays headline and loadcurve
// at -shards 4 -core-lanes 4 with hit count == job count and the
// artifact byte-identical — turning a lane-topology knob costs zero
// re-simulation.
func TestCacheWarmShards1ServesShards4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	for _, name := range []string{"headline", "loadcurve"} {
		t.Run(name, func(t *testing.T) {
			pinVersion(t, "cache-test-v1")
			store := openCache(t, t.TempDir(), resultcache.ReadWrite)
			cold := renderWith(t, store, name, 0, 1, 0)
			jobs := store.Stats().Misses
			if jobs == 0 {
				t.Fatalf("%s planned no cacheable jobs", name)
			}
			before := store.Stats()
			warm := renderWith(t, store, name, 0, 4, 4)
			if !bytes.Equal(cold, warm) {
				t.Fatalf("warm shards=4 core-lanes=4 render differs from cold shards=1\n--- cold ---\n%s--- warm ---\n%s",
					cold, warm)
			}
			d := store.Stats().Sub(before)
			if d.Hits != jobs || d.Misses != 0 {
				t.Fatalf("cross-topology delta %+v, want %d hits and zero misses", d, jobs)
			}
			// And the reuse is stable: rerunning the moved topology stays
			// all-hits (nothing was re-stored under a different key).
			before = store.Stats()
			renderWith(t, store, name, 0, 4, 4)
			if d := store.Stats().Sub(before); d.Misses != 0 {
				t.Fatalf("identical rerun missed: %+v", d)
			}
		})
	}
}

// TestCacheNonNeutralPerturbationMisses proves the mask is surgical:
// changing a result-affecting config field (a DRAM timing parameter)
// under the same topology forces fresh misses, never a stale hit.
func TestCacheNonNeutralPerturbationMisses(t *testing.T) {
	pinVersion(t, "cache-test-v1")
	cfg := system.DefaultConfig(system.PIMMMU)
	cfg.Shards = 1
	r := &harness.Runner{}
	base := r.NewJob("test/v1", cfg, "op")
	// Neutral change: same key.
	moved := cfg
	moved.Shards, moved.CoreLanes = 4, 4
	if r.NewJob("test/v1", moved, "op").Key != base.Key {
		t.Fatal("lane-topology change altered the cache key")
	}
	// Non-neutral change: different key.
	timing := cfg
	timing.Mem.DRAM.Timing.CL++
	if r.NewJob("test/v1", timing, "op").Key == base.Key {
		t.Fatal("DRAM timing change did not alter the cache key")
	}
	// Engine class change: different key.
	plain := cfg
	plain.Shards = 0
	if r.NewJob("test/v1", plain, "op").Key == base.Key {
		t.Fatal("plain-engine config shares the sharded cache key")
	}
}

// TestCacheCorruptEntriesRecomputed damages every stored entry —
// truncation, bit flips, emptying — and requires the rerun to reject
// them all, recompute, repair the files, and still render the cold
// artifact byte for byte.
func TestCacheCorruptEntriesRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	dir := t.TempDir()
	store := openCache(t, dir, resultcache.ReadWrite)
	cold := renderWith(t, store, "fig8", 2, 0, 0)
	entries, err := filepath.Glob(filepath.Join(dir, "*.prc"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v (%v)", entries, err)
	}
	for i, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncate mid-payload
			data = data[:len(data)/2]
		case 1: // flip a payload bit
			data[len(data)-8] ^= 1
		case 2: // empty file
			data = nil
		}
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	before := store.Stats()
	warm := renderWith(t, store, "fig8", 2, 0, 0)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("recomputed run differs from cold\n--- cold ---\n%s--- recomputed ---\n%s", cold, warm)
	}
	d := store.Stats().Sub(before)
	if d.Hits != 0 || d.Rejected != uint64(len(entries)) || d.Stores != uint64(len(entries)) {
		t.Fatalf("corruption delta %+v, want %d rejections and repairs", d, len(entries))
	}
	// The repaired entries hit again.
	before = store.Stats()
	renderWith(t, store, "fig8", 2, 0, 0)
	if d := store.Stats().Sub(before); d.Hits != uint64(len(entries)) || d.Misses != 0 {
		t.Fatalf("repair did not stick: %+v", d)
	}
}

// TestCacheCodeVersionChangeForcesMiss proves the second half of the
// acceptance criterion: a code-version change alone — same config, same
// op — invalidates every entry.
func TestCacheCodeVersionChangeForcesMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "build-A")
	store := openCache(t, t.TempDir(), resultcache.ReadWrite)
	cold := renderWith(t, store, "fig8", 2, 0, 0)
	jobs := store.Stats().Misses
	resultcache.SetCodeVersion("build-B")
	before := store.Stats()
	if got := renderWith(t, store, "fig8", 2, 0, 0); !bytes.Equal(cold, got) {
		t.Fatal("same-code rerun under a new stamp changed output")
	}
	if d := store.Stats().Sub(before); d.Hits != 0 || d.Misses != jobs {
		t.Fatalf("new code version delta %+v, want %d misses", d, jobs)
	}
	// Flipping back, the original entries still hit: distinct versions
	// coexist in one directory without clobbering each other's keys.
	resultcache.SetCodeVersion("build-A")
	before = store.Stats()
	renderWith(t, store, "fig8", 2, 0, 0)
	if d := store.Stats().Sub(before); d.Hits != jobs {
		t.Fatalf("original version's entries lost: %+v", d)
	}
}

// TestCacheReadOnlySharing exercises -cache ro: hits serve, misses
// recompute, and nothing is ever written.
func TestCacheReadOnlySharing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	dir := t.TempDir()
	// Warm half the cache in rw mode, then reopen read-only.
	rw := openCache(t, dir, resultcache.ReadWrite)
	cold := renderWith(t, rw, "fig8", 2, 0, 0)
	ro := openCache(t, dir, resultcache.ReadOnly)
	if got := renderWith(t, ro, "fig8", 2, 0, 0); !bytes.Equal(cold, got) {
		t.Fatal("read-only warm run differs")
	}
	st := ro.Stats()
	if st.Hits == 0 || st.Stores != 0 || st.BytesWritten != 0 {
		t.Fatalf("read-only stats %+v", st)
	}
	// A different experiment misses and recomputes without writing.
	before := ro.Stats()
	renderWith(t, ro, "replay", 2, 0, 0)
	d := ro.Stats().Sub(before)
	if d.Misses == 0 || d.Stores != 0 {
		t.Fatalf("read-only miss path delta %+v", d)
	}
}
