// Result-cache correctness tests: a cache-hit rerun of an experiment
// must be byte-identical to a cold run — across worker counts and
// shard/core-lane topologies — and the cache must reject (and silently
// recompute past) corrupt, truncated and wrong-code-version entries.
// These are the properties that make caching sound on top of the
// determinism contract the rest of this suite pins.
package pimmmu_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// cachedExperiments are the tier-1 representatives: fig8 caches plain
// floats; replay caches a struct carrying a latency histogram, covering
// the structured-payload round trip. The slow tier's experiment-wide
// audits extend byte-identity to every experiment uncached.
var cachedExperiments = []string{"fig8", "replay"}

// renderWith renders one experiment with the given sweep/topology
// settings, restoring process-wide state afterwards.
func renderWith(t *testing.T, name string, workers, shards, coreLanes int) []byte {
	t.Helper()
	e, ok := harness.ByName(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	sweep.SetWorkers(workers)
	harness.SetShards(shards)
	harness.SetCoreLanes(coreLanes)
	defer sweep.SetWorkers(0)
	defer harness.SetShards(0)
	defer harness.SetCoreLanes(0)
	var b bytes.Buffer
	e.Run(&b, harness.Quick)
	return b.Bytes()
}

// openCache builds a fresh rw store over dir and installs it in the
// harness for the duration of the test.
func openCache(t *testing.T, dir string, mode resultcache.Mode) *resultcache.Store {
	t.Helper()
	store, err := resultcache.Open(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	harness.SetCache(store)
	t.Cleanup(func() { harness.SetCache(nil) })
	return store
}

// pinVersion makes the code-version stamp deterministic for one test.
func pinVersion(t *testing.T, v string) {
	t.Helper()
	resultcache.SetCodeVersion(v)
	t.Cleanup(func() { resultcache.SetCodeVersion("") })
}

// TestCacheHitRerunByteIdentical is the acceptance property: with a warm
// cache, a rerun serves every job from disk (hits == job count) and the
// rendered tables are byte-identical to the cold run, at every worker
// count.
func TestCacheHitRerunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	for _, name := range cachedExperiments {
		t.Run(name, func(t *testing.T) {
			pinVersion(t, "cache-test-v1")
			store := openCache(t, t.TempDir(), resultcache.ReadWrite)
			cold := renderWith(t, name, 1, 0, 0)
			st := store.Stats()
			if st.Hits != 0 || st.Misses == 0 || st.Stores != st.Misses {
				t.Fatalf("cold-run stats: %+v", st)
			}
			jobs := st.Misses
			for _, workers := range []int{1, 4, 8} {
				before := store.Stats()
				warm := renderWith(t, name, workers, 0, 0)
				if !bytes.Equal(cold, warm) {
					t.Fatalf("workers=%d: warm run differs from cold\n--- cold ---\n%s--- warm ---\n%s",
						workers, cold, warm)
				}
				d := store.Stats().Sub(before)
				if d.Hits != jobs || d.Misses != 0 {
					t.Fatalf("workers=%d: warm-run delta %+v, want %d hits", workers, d, jobs)
				}
			}
		})
	}
}

// TestCacheTopologyChangesDoNotAlias proves no cross-topology aliasing:
// the lane-topology fields are part of the fingerprint, so a sharded
// rerun recomputes rather than reusing plain-engine entries — and still
// renders the identical artifact (the cross-shard invariant pinned by
// sharded_test.go).
func TestCacheTopologyChangesDoNotAlias(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	store := openCache(t, t.TempDir(), resultcache.ReadWrite)
	// The serial sharded engine (shards=1) is the reference: output is
	// byte-identical across every topology with shards >= 1. (The plain
	// engine is its own fingerprint too, but fig8 is a CPU-streaming
	// workload where it legitimately orders same-instant ties
	// differently — see system.Config.Shards — so it is not the
	// comparison base here.)
	serial := renderWith(t, "fig8", 4, 1, 0)
	jobs := store.Stats().Misses
	for _, topo := range []struct{ shards, coreLanes int }{{0, 0}, {2, 4}} {
		before := store.Stats()
		got := renderWith(t, "fig8", 4, topo.shards, topo.coreLanes)
		if topo.shards >= 1 && !bytes.Equal(serial, got) {
			t.Fatalf("shards=%d core-lanes=%d: output diverged from serial sharded engine",
				topo.shards, topo.coreLanes)
		}
		d := store.Stats().Sub(before)
		if d.Hits != 0 || d.Misses != jobs {
			t.Fatalf("shards=%d core-lanes=%d: delta %+v, want %d fresh misses",
				topo.shards, topo.coreLanes, d, jobs)
		}
	}
	// The original topology's entries are still intact.
	before := store.Stats()
	if warm := renderWith(t, "fig8", 4, 1, 0); !bytes.Equal(serial, warm) {
		t.Fatal("serial-sharded rerun no longer matches")
	}
	if d := store.Stats().Sub(before); d.Hits != jobs {
		t.Fatalf("serial-sharded entries lost: %+v", d)
	}
}

// TestCacheCorruptEntriesRecomputed damages every stored entry —
// truncation, bit flips, emptying — and requires the rerun to reject
// them all, recompute, repair the files, and still render the cold
// artifact byte for byte.
func TestCacheCorruptEntriesRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	dir := t.TempDir()
	store := openCache(t, dir, resultcache.ReadWrite)
	cold := renderWith(t, "fig8", 2, 0, 0)
	entries, err := filepath.Glob(filepath.Join(dir, "*.prc"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v (%v)", entries, err)
	}
	for i, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncate mid-payload
			data = data[:len(data)/2]
		case 1: // flip a payload bit
			data[len(data)-8] ^= 1
		case 2: // empty file
			data = nil
		}
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	before := store.Stats()
	warm := renderWith(t, "fig8", 2, 0, 0)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("recomputed run differs from cold\n--- cold ---\n%s--- recomputed ---\n%s", cold, warm)
	}
	d := store.Stats().Sub(before)
	if d.Hits != 0 || d.Rejected != uint64(len(entries)) || d.Stores != uint64(len(entries)) {
		t.Fatalf("corruption delta %+v, want %d rejections and repairs", d, len(entries))
	}
	// The repaired entries hit again.
	before = store.Stats()
	renderWith(t, "fig8", 2, 0, 0)
	if d := store.Stats().Sub(before); d.Hits != uint64(len(entries)) || d.Misses != 0 {
		t.Fatalf("repair did not stick: %+v", d)
	}
}

// TestCacheCodeVersionChangeForcesMiss proves the second half of the
// acceptance criterion: a code-version change alone — same config, same
// op — invalidates every entry.
func TestCacheCodeVersionChangeForcesMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "build-A")
	store := openCache(t, t.TempDir(), resultcache.ReadWrite)
	cold := renderWith(t, "fig8", 2, 0, 0)
	jobs := store.Stats().Misses
	resultcache.SetCodeVersion("build-B")
	before := store.Stats()
	if got := renderWith(t, "fig8", 2, 0, 0); !bytes.Equal(cold, got) {
		t.Fatal("same-code rerun under a new stamp changed output")
	}
	if d := store.Stats().Sub(before); d.Hits != 0 || d.Misses != jobs {
		t.Fatalf("new code version delta %+v, want %d misses", d, jobs)
	}
	// Flipping back, the original entries still hit: distinct versions
	// coexist in one directory without clobbering each other's keys.
	resultcache.SetCodeVersion("build-A")
	before = store.Stats()
	renderWith(t, "fig8", 2, 0, 0)
	if d := store.Stats().Sub(before); d.Hits != jobs {
		t.Fatalf("original version's entries lost: %+v", d)
	}
}

// TestCacheReadOnlySharing exercises -cache ro: hits serve, misses
// recompute, and nothing is ever written.
func TestCacheReadOnlySharing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	pinVersion(t, "cache-test-v1")
	dir := t.TempDir()
	// Warm half the cache in rw mode, then reopen read-only.
	openCache(t, dir, resultcache.ReadWrite)
	cold := renderWith(t, "fig8", 2, 0, 0)
	ro := openCache(t, dir, resultcache.ReadOnly)
	if got := renderWith(t, "fig8", 2, 0, 0); !bytes.Equal(cold, got) {
		t.Fatal("read-only warm run differs")
	}
	st := ro.Stats()
	if st.Hits == 0 || st.Stores != 0 || st.BytesWritten != 0 {
		t.Fatalf("read-only stats %+v", st)
	}
	// A different experiment misses and recomputes without writing.
	before := ro.Stats()
	renderWith(t, "replay", 2, 0, 0)
	d := ro.Stats().Sub(before)
	if d.Misses == 0 || d.Stores != 0 {
		t.Fatalf("read-only miss path delta %+v", d)
	}
}
