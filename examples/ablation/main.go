// Ablation sweeps the paper's four design points (Base, Base+D,
// Base+D+H, Base+D+H+P) over increasing transfer sizes and prints
// throughput and energy efficiency — a compact Fig. 15 on the public API.
package main

import (
	"fmt"

	pimmmu "repro"
)

func main() {
	designs := []pimmmu.Design{pimmmu.Base, pimmmu.BaseD, pimmmu.BaseDH, pimmmu.PIMMMU}
	sizes := []uint64{1 << 20, 4 << 20, 16 << 20} // total bytes

	fmt.Printf("%-12s", "size")
	for _, d := range designs {
		fmt.Printf("  %14s", d)
	}
	fmt.Println("  (GB/s | MB/J)")

	for _, total := range sizes {
		fmt.Printf("%-12s", fmt.Sprintf("%d MiB", total>>20))
		for _, d := range designs {
			sys := pimmmu.MustNew(pimmmu.Default(d))
			perCore := total / uint64(sys.NumCores()) &^ 63
			if perCore < 64 {
				perCore = 64
			}
			buf := sys.Malloc(sys.NumCores() * int(perCore))
			res, err := sys.ToPIM(buf, sys.AllCores(), perCore, 0)
			if err != nil {
				panic(err)
			}
			e := sys.Energy(res.Bytes)
			fmt.Printf("  %6.2f | %5.0f", res.GBps(), e.BytesPerJoule/1e6)
		}
		fmt.Println()
	}
}
