// Vectoradd runs the complete PIM offload flow of PrIM's VA workload:
// partition two input vectors across all PIM cores, transfer them to
// MRAM, execute the per-core addition (functionally, on the simulated
// MRAM contents), transfer the result back, and verify it bit-exactly
// against a host computation — while measuring the end-to-end time
// breakdown under both the baseline and the PIM-MMU.
package main

import (
	"encoding/binary"
	"fmt"

	pimmmu "repro"
)

const (
	elemsPerCore = 8 << 10 // int32 elements per core per vector
	perCore      = elemsPerCore * 4
)

// dpuKernelCycles approximates the DPU cost of elementwise addition:
// ~6 cycles per element on a 350 MHz in-order DPU.
const dpuKernelCycles = int64(elemsPerCore) * 6

func run(design pimmmu.Design) {
	sys := pimmmu.MustNew(pimmmu.Default(design))
	cores := sys.AllCores()
	n := len(cores) * elemsPerCore

	// Host inputs.
	a := sys.Malloc(n * 4)
	b := sys.Malloc(n * 4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(a.Data[i*4:], uint32(i*3+1))
		binary.LittleEndian.PutUint32(b.Data[i*4:], uint32(i*5+2))
	}

	// Offload inputs: vector A at MRAM offset 0, B right after it.
	rA, err := sys.ToPIM(a, cores, perCore, 0)
	must(err)
	rB, err := sys.ToPIM(b, cores, perCore, perCore)
	must(err)

	// "DPU kernel": each core adds its slices inside its own MRAM.
	for _, c := range cores {
		av := sys.MRAM(c, 0, perCore)
		bv := sys.MRAM(c, perCore, perCore)
		out := make([]byte, perCore)
		for i := 0; i < elemsPerCore; i++ {
			s := binary.LittleEndian.Uint32(av[i*4:]) + binary.LittleEndian.Uint32(bv[i*4:])
			binary.LittleEndian.PutUint32(out[i*4:], s)
		}
		sys.WriteMRAM(c, 2*perCore, out)
	}
	kernel := sys.RunKernel(dpuKernelCycles)

	// Retrieve the result.
	cbuf := sys.Malloc(n * 4)
	rC, err := sys.FromPIM(cbuf, cores, perCore, 2*perCore)
	must(err)

	// Verify against the host.
	for i := 0; i < n; i++ {
		want := uint32(i*3+1) + uint32(i*5+2)
		if got := binary.LittleEndian.Uint32(cbuf.Data[i*4:]); got != want {
			panic(fmt.Sprintf("mismatch at %d: got %d want %d", i, got, want))
		}
	}

	xfer := rA.Duration + rB.Duration + rC.Duration
	total := xfer + kernel
	fmt.Printf("%-12s  in %8v + %8v | kernel %8v | out %8v | total %8v (transfer %4.1f%%)\n",
		design, rA.Duration, rB.Duration, kernel, rC.Duration, total,
		100*float64(xfer)/float64(total))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	fmt.Printf("VA on %d PIM cores, %d int32 elements/core — result verified bit-exact\n",
		pimmmu.MustNew(pimmmu.Default(pimmmu.Base)).NumCores(), elemsPerCore)
	run(pimmmu.Base)
	run(pimmmu.PIMMMU)
}
