// Quickstart: move data to 512 simulated PIM cores with the baseline
// software path and with the PIM-MMU, and compare throughput — the
// paper's headline experiment in a dozen lines.
package main

import (
	"fmt"

	pimmmu "repro"
)

func main() {
	const perCore = 32 << 10 // 32 KiB per PIM core => 16 MiB total

	for _, design := range []pimmmu.Design{pimmmu.Base, pimmmu.PIMMMU} {
		sys := pimmmu.MustNew(pimmmu.Default(design))
		cores := sys.AllCores()

		// Allocate and fill the host input (Fig. 10: one contiguous array,
		// one slice per PIM core).
		buf := sys.Malloc(len(cores) * perCore)
		for i := range buf.Data {
			buf.Data[i] = byte(i)
		}

		// Offload: dpu_push_xfer on Base, pim_mmu_transfer on PIM-MMU.
		res, err := sys.ToPIM(buf, cores, perCore, 0)
		if err != nil {
			panic(err)
		}

		// The data really is in MRAM: spot-check core 100.
		got := sys.MRAM(100, 0, 8)
		fmt.Printf("%-12s  %6.2f GB/s  (%v for %d MiB; core100[0:8]=%v)\n",
			design, res.GBps(), res.Duration, res.Bytes>>20, got)
	}
}
