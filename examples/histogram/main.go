// Histogram runs PrIM's HST workload through the staged
// dpu_prepare_xfer/dpu_push_xfer-style API on a *subset* of PIM cores:
// the input is scattered to half the cores, each core builds a private
// histogram in its MRAM, the partials come back and the host merges them
// — verified against a direct host computation.
package main

import (
	"encoding/binary"
	"fmt"

	pimmmu "repro"
)

const (
	bins         = 256
	elemsPerCore = 16 << 10 // uint32 samples per core
	perCore      = elemsPerCore * 4
	histBytes    = bins * 8
)

func run(design pimmmu.Design) {
	sys := pimmmu.MustNew(pimmmu.Default(design))
	cores := sys.AllCores()[:sys.NumCores()/2] // half the device

	// Host input: deterministic pseudo-random samples.
	in := sys.Malloc(len(cores) * perCore)
	x := uint64(0x12345)
	for i := 0; i < len(in.Data)/4; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		binary.LittleEndian.PutUint32(in.Data[i*4:], uint32(x>>33))
	}

	// Stage and push the input (Fig. 10a pattern).
	xb := sys.PrepareXfer()
	for i, c := range cores {
		xb.Bind(c, in, uint64(i)*perCore)
	}
	rIn, err := xb.PushToPIM(perCore, 0)
	must(err)

	// "DPU kernel": each core histograms its slice into MRAM after the
	// input region.
	for _, c := range cores {
		data := sys.MRAM(c, 0, perCore)
		var h [bins]uint64
		for i := 0; i < elemsPerCore; i++ {
			h[binary.LittleEndian.Uint32(data[i*4:])%bins]++
		}
		out := make([]byte, histBytes)
		for b, v := range h {
			binary.LittleEndian.PutUint64(out[b*8:], v)
		}
		sys.WriteMRAM(c, perCore, out)
	}
	kernel := sys.RunKernel(int64(elemsPerCore) * 10) // ~10 cycles/element

	// Pull the partial histograms and merge.
	parts := sys.Malloc(len(cores) * histBytes)
	yb := sys.PrepareXfer()
	for i, c := range cores {
		yb.Bind(c, parts, uint64(i)*histBytes)
	}
	rOut, err := yb.PushFromPIM(histBytes, perCore)
	must(err)

	var merged [bins]uint64
	for i := range cores {
		for b := 0; b < bins; b++ {
			merged[b] += binary.LittleEndian.Uint64(parts.Data[i*histBytes+b*8:])
		}
	}

	// Verify against the host.
	var want [bins]uint64
	for i := 0; i < len(in.Data)/4; i++ {
		want[binary.LittleEndian.Uint32(in.Data[i*4:])%bins]++
	}
	if merged != want {
		panic("histogram mismatch")
	}

	total := rIn.Duration + kernel + rOut.Duration
	fmt.Printf("%-12s  %d cores  in %8v | kernel %8v | out %8v | total %8v  (verified)\n",
		design, len(cores), rIn.Duration, kernel, rOut.Duration, total)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	fmt.Printf("HST on half the device, %d bins, %d samples/core\n", bins, elemsPerCore)
	run(pimmmu.Base)
	run(pimmmu.PIMMMU)
}
