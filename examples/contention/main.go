// Contention reproduces the spirit of Fig. 13 on the public API: transfer
// latency for the baseline and the PIM-MMU while compute-bound and
// memory-bound contenders share the machine.
package main

import (
	"fmt"
	"time"

	pimmmu "repro"
)

const perCore = 8 << 10

func transferLatency(design pimmmu.Design, setup func(*pimmmu.System) func()) time.Duration {
	sys := pimmmu.MustNew(pimmmu.Default(design))
	stop := setup(sys)
	buf := sys.Malloc(sys.NumCores() * perCore)
	res, err := sys.ToPIM(buf, sys.AllCores(), perCore, 0)
	if err != nil {
		panic(err)
	}
	if stop != nil {
		stop()
	}
	return res.Duration
}

func main() {
	none := func(*pimmmu.System) func() { return nil }

	fmt.Println("-- compute-bound contenders (Fig. 13a) --")
	baseIdle := transferLatency(pimmmu.Base, none)
	mmuIdle := transferLatency(pimmmu.PIMMMU, none)
	fmt.Printf("%-10s %12s %12s\n", "spinners", "Base", "PIM-MMU")
	for _, n := range []int{0, 8, 16, 24} {
		n := n
		setup := func(s *pimmmu.System) func() { return s.CompeteCompute(n) }
		if n == 0 {
			setup = none
		}
		b := transferLatency(pimmmu.Base, setup)
		m := transferLatency(pimmmu.PIMMMU, setup)
		fmt.Printf("%-10d %11.2fx %11.2fx\n", n,
			float64(b)/float64(baseIdle), float64(m)/float64(mmuIdle))
	}

	fmt.Println("-- memory-bound contenders (Fig. 13b) --")
	fmt.Printf("%-10s %12s %12s\n", "intensity", "Base", "PIM-MMU")
	for _, level := range []string{pimmmu.IntensityLow, pimmmu.IntensityMedium,
		pimmmu.IntensityHigh, pimmmu.IntensityVeryHigh} {
		level := level
		setup := func(s *pimmmu.System) func() {
			stop, err := s.CompeteMemory(4, level)
			if err != nil {
				panic(err)
			}
			return stop
		}
		b := transferLatency(pimmmu.Base, setup)
		m := transferLatency(pimmmu.PIMMMU, setup)
		fmt.Printf("%-10s %11.2fx %11.2fx\n", level,
			float64(b)/float64(baseIdle), float64(m)/float64(mmuIdle))
	}
}
