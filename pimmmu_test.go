package pimmmu_test

import (
	"bytes"
	"testing"

	pimmmu "repro"
)

// small returns a config scaled down for fast tests: 2 channels, 1 rank
// (=> 128 cores).
func small(d pimmmu.Design) pimmmu.Config {
	c := pimmmu.Default(d)
	c.Channels = 2
	c.RanksPerChannel = 1
	return c
}

func TestFunctionalRoundTrip(t *testing.T) {
	for _, d := range []pimmmu.Design{pimmmu.Base, pimmmu.PIMMMU} {
		s := pimmmu.MustNew(small(d))
		cores := s.AllCores()[:16]
		const per = 4096
		in := s.Malloc(len(cores) * per)
		for i := range in.Data {
			in.Data[i] = byte(i*7 + 3)
		}
		if _, err := s.ToPIM(in, cores, per, 0); err != nil {
			t.Fatalf("%v ToPIM: %v", d, err)
		}
		// Every core's MRAM must hold its slice.
		for i, c := range cores {
			want := in.Data[i*per : (i+1)*per]
			if got := s.MRAM(c, 0, per); !bytes.Equal(got, want) {
				t.Fatalf("%v core %d MRAM mismatch", d, c)
			}
		}
		out := s.Malloc(len(cores) * per)
		if _, err := s.FromPIM(out, cores, per, 0); err != nil {
			t.Fatalf("%v FromPIM: %v", d, err)
		}
		if !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("%v round trip corrupted data", d)
		}
	}
}

func TestPIMMMUFasterThanBase(t *testing.T) {
	const per = 16 << 10
	run := func(d pimmmu.Design) float64 {
		s := pimmmu.MustNew(small(d))
		buf := s.Malloc(s.NumCores() * per)
		r, err := s.ToPIM(buf, s.AllCores(), per, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.GBps()
	}
	base := run(pimmmu.Base)
	mmu := run(pimmmu.PIMMMU)
	if mmu < 2*base {
		t.Errorf("PIM-MMU %.1f GB/s vs base %.1f GB/s; want > 2x", mmu, base)
	}
}

func TestKernelAdvancesTime(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	before := s.Elapsed()
	d := s.RunKernel(350_000) // 1 ms at 350 MHz
	if d <= 0 {
		t.Fatal("kernel duration not positive")
	}
	if s.Elapsed()-before < d {
		t.Error("simulated clock did not advance by the kernel time")
	}
}

func TestWriteMRAMThenFromPIM(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	cores := []int{0, 5, 9}
	const per = 256
	for i, c := range cores {
		data := bytes.Repeat([]byte{byte(i + 1)}, per)
		s.WriteMRAM(c, 0, data)
	}
	out := s.Malloc(len(cores) * per)
	if _, err := s.FromPIM(out, cores, per, 0); err != nil {
		t.Fatal(err)
	}
	for i := range cores {
		if out.Data[i*per] != byte(i+1) || out.Data[(i+1)*per-1] != byte(i+1) {
			t.Errorf("core %d result not retrieved", cores[i])
		}
	}
}

func TestMemcpyResult(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	r := s.Memcpy(1 << 20)
	if r.Bytes != 1<<20 || r.Duration <= 0 || r.GBps() <= 0 {
		t.Errorf("memcpy result = %+v", r)
	}
}

func TestEnergyReport(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.Base))
	buf := s.Malloc(s.NumCores() * 4096)
	r, _ := s.ToPIM(buf, s.AllCores(), 4096, 0)
	rep := s.Energy(r.Bytes)
	if rep.TotalJoules <= 0 || rep.AvgWatts <= 0 || rep.BytesPerJoule <= 0 {
		t.Errorf("energy report = %+v", rep)
	}
	if rep.StaticJoules >= rep.TotalJoules {
		t.Error("static energy exceeds total")
	}
	if rep.AvgWatts < 10 || rep.AvgWatts > 120 {
		t.Errorf("average power %.1f W implausible", rep.AvgWatts)
	}
}

func TestStatsCounters(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	const per = 4096
	buf := s.Malloc(s.NumCores() * per)
	s.ToPIM(buf, s.AllCores(), per, 0)
	st := s.Stats()
	want := uint64(s.NumCores()) * per
	if st.PIMWriteBytes != want {
		t.Errorf("PIM write bytes = %d, want %d", st.PIMWriteBytes, want)
	}
	if st.DRAMReadBytes != want {
		t.Errorf("DRAM read bytes = %d, want %d", st.DRAMReadBytes, want)
	}
	if st.PIMRowHitRate < 0.5 {
		t.Errorf("PIM row hit rate %.2f too low for PIM-MS", st.PIMRowHitRate)
	}
	if len(st.PerPIMChannelWr) != 2 {
		t.Errorf("per-channel stats = %v", st.PerPIMChannelWr)
	}
}

func TestContentionAPI(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	stopC := s.CompeteCompute(4)
	stopM, err := s.CompeteMemory(2, pimmmu.IntensityHigh)
	if err != nil {
		t.Fatal(err)
	}
	buf := s.Malloc(s.NumCores() * 1024)
	if _, err := s.ToPIM(buf, s.AllCores(), 1024, 0); err != nil {
		t.Fatal(err)
	}
	stopC()
	stopM()
	if _, err := s.CompeteMemory(1, "bogus"); err == nil {
		t.Error("bogus intensity accepted")
	}
}

// Compute contention must slow the baseline substantially more than the
// PIM-MMU (Fig. 13a).
func TestComputeContentionSensitivity(t *testing.T) {
	const per = 8 << 10
	run := func(d pimmmu.Design, contenders int) float64 {
		s := pimmmu.MustNew(small(d))
		var stop func()
		if contenders > 0 {
			stop = s.CompeteCompute(contenders)
		}
		buf := s.Malloc(s.NumCores() * per)
		r, err := s.ToPIM(buf, s.AllCores(), per, 0)
		if err != nil {
			t.Fatal(err)
		}
		if stop != nil {
			stop()
		}
		return float64(r.Duration)
	}
	baseSlow := run(pimmmu.Base, 16) / run(pimmmu.Base, 0)
	mmuSlow := run(pimmmu.PIMMMU, 16) / run(pimmmu.PIMMMU, 0)
	t.Logf("16 compute contenders: base %.2fx slower, pim-mmu %.2fx slower", baseSlow, mmuSlow)
	if baseSlow < 1.5 {
		t.Errorf("baseline slowdown %.2fx; expected heavy sensitivity to core contention", baseSlow)
	}
	if mmuSlow > 1.2 {
		t.Errorf("PIM-MMU slowdown %.2fx; should be nearly insensitive", mmuSlow)
	}
}

func TestErrorPaths(t *testing.T) {
	s := pimmmu.MustNew(small(pimmmu.PIMMMU))
	if _, err := s.ToPIM(nil, []int{0}, 64, 0); err == nil {
		t.Error("nil buffer accepted")
	}
	tiny := s.Malloc(64)
	if _, err := s.ToPIM(tiny, []int{0, 1}, 64, 0); err == nil {
		t.Error("undersized buffer accepted")
	}
	if _, err := s.ToPIM(tiny, []int{0}, 63, 0); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := New(pimmmu.Config{Design: pimmmu.PIMMMU, Channels: 3}); err == nil {
		t.Error("non-power-of-two channels accepted")
	}
}

// New is re-declared here to exercise the error-returning constructor
// without the Must wrapper.
func New(c pimmmu.Config) (*pimmmu.System, error) { return pimmmu.New(c) }

func TestDefaults(t *testing.T) {
	s := pimmmu.MustNew(pimmmu.Default(pimmmu.PIMMMU))
	if s.NumCores() != 512 {
		t.Errorf("default cores = %d, want 512 (Table I)", s.NumCores())
	}
	if s.MRAMBytes() != 64<<20 {
		t.Errorf("MRAM = %d, want 64 MiB", s.MRAMBytes())
	}
	if s.Design() != pimmmu.PIMMMU {
		t.Error("design not preserved")
	}
	if len(s.AllCores()) != 512 {
		t.Error("AllCores length mismatch")
	}
}
