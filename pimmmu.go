// Package pimmmu (import path "repro") is the public API of the PIM-MMU
// reproduction: a simulated memory-bus-integrated PIM system (UPMEM-class,
// Table I of the paper) together with the paper's contribution — the
// PIM-MMU data-transfer architecture (Data Copy Engine + PIM-aware Memory
// Scheduler + Heterogeneous Memory Mapping Unit) — and the software
// baseline it is evaluated against.
//
// A System is one simulated machine. Users allocate host buffers, move
// data to and from PIM cores' MRAM with the design's transfer machinery
// (software dpu_push_xfer for Base, the DCE for PIM-MMU), launch kernels,
// and read results back. Transfers are both functional (bytes really move
// into the simulated MRAM) and timed (a cycle-level DDR4 simulation
// produces the duration), so correctness and performance are observed on
// the same run:
//
//	sys, _ := pimmmu.New(pimmmu.Default(pimmmu.PIMMMU))
//	buf := sys.Malloc(nCores * per)
//	fillInput(buf.Data)
//	res, _ := sys.ToPIM(buf, sys.AllCores(), uint64(per), 0)
//	fmt.Printf("%.1f GB/s\n", res.GBps())
package pimmmu

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/system"
)

// Design selects the transfer architecture, mirroring the paper's
// ablation (Fig. 15).
type Design = system.Design

// The four design points of the paper's ablation study.
const (
	// Base is the unmodified PIM system: software multi-threaded
	// transfers under the homogeneous locality-centric mapping.
	Base = system.Base
	// BaseD adds the Data Copy Engine as a conventional DMA ("Base+D").
	BaseD = system.BaseD
	// BaseDH adds the HetMap heterogeneous mapping ("Base+D+H").
	BaseDH = system.BaseDH
	// PIMMMU is the full proposal ("Base+D+H+P").
	PIMMMU = system.PIMMMU
)

// Config is the simplified public configuration. Zero fields take
// Table I defaults; the full internal configuration is derived from it.
type Config struct {
	// Design selects the transfer architecture.
	Design Design
	// Channels is the channel count for both the DRAM and PIM device
	// sets (Table I: 4). Must be a power of two.
	Channels int
	// RanksPerChannel is the rank count per channel (Table I: 2).
	RanksPerChannel int
	// TransferThreads is the baseline runtime's worker count (8).
	TransferThreads int
	// Seed varies the OS page-placement permutation.
	Seed uint64
}

// Default returns the Table I configuration for a design point.
func Default(d Design) Config {
	return Config{Design: d, Channels: 4, RanksPerChannel: 2, TransferThreads: 8}
}

// build derives the full internal configuration.
func (c Config) build() (system.Config, error) {
	cfg := system.DefaultConfig(c.Design)
	if c.Channels != 0 {
		cfg.Mem.DRAM.Geometry.Channels = c.Channels
		cfg.Mem.PIM.Geometry.Channels = c.Channels
		cfg.PIM.DRAM.Channels = c.Channels
	}
	if c.RanksPerChannel != 0 {
		cfg.Mem.DRAM.Geometry.Ranks = c.RanksPerChannel
		cfg.Mem.PIM.Geometry.Ranks = c.RanksPerChannel
		cfg.PIM.DRAM.Ranks = c.RanksPerChannel
	}
	if c.TransferThreads != 0 {
		cfg.Baseline.Threads = c.TransferThreads
		cfg.Memcpy.Threads = c.TransferThreads
	}
	if c.Seed != 0 {
		cfg.Mem.PageSeed = c.Seed
	}
	if err := cfg.Validate(); err != nil {
		return system.Config{}, err
	}
	return cfg, nil
}

// Buffer is a host-side buffer: real bytes plus the simulated physical
// address timing runs against.
type Buffer struct {
	// Addr is the buffer's simulated base address in the DRAM region.
	Addr uint64
	// Data is the functional content.
	Data []byte
}

// Result reports one timed operation.
type Result struct {
	// Bytes moved.
	Bytes uint64
	// Duration of the operation in simulated time.
	Duration time.Duration
	durPicos clock.Picos
}

// GBps is the achieved throughput in decimal gigabytes per second.
func (r Result) GBps() float64 {
	if r.durPicos <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.durPicos.Seconds() / 1e9
}

func resultOf(bytes uint64, d clock.Picos) Result {
	return Result{Bytes: bytes, Duration: time.Duration(d / clock.Nanosecond), durPicos: d}
}

// System is one simulated machine.
type System struct {
	inner *system.System
	cfg   Config
	start energy.Activity
}

// New builds a machine from a public configuration.
func New(c Config) (*System, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	inner, err := system.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{inner: inner, cfg: c}
	s.start = inner.Activity()
	return s, nil
}

// MustNew is New for static configurations.
func MustNew(c Config) *System {
	s, err := New(c)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCores reports the PIM core (DPU) count.
func (s *System) NumCores() int { return s.inner.Cfg.PIM.NumCores() }

// AllCores returns [0, NumCores).
func (s *System) AllCores() []int {
	cores := make([]int, s.NumCores())
	for i := range cores {
		cores[i] = i
	}
	return cores
}

// MRAMBytes reports each core's private memory capacity.
func (s *System) MRAMBytes() uint64 { return s.inner.Cfg.PIM.MRAMBytes() }

// Design reports the configured design point.
func (s *System) Design() Design { return s.cfg.Design }

// Elapsed reports total simulated time.
func (s *System) Elapsed() time.Duration {
	return time.Duration(s.inner.Eng.Now() / clock.Nanosecond)
}

// Malloc allocates a host buffer of n bytes (line-aligned).
func (s *System) Malloc(n int) *Buffer {
	if n <= 0 {
		panic("pimmmu: non-positive allocation")
	}
	return &Buffer{Addr: s.inner.Alloc(uint64(n)), Data: make([]byte, n)}
}

// transferOp validates and assembles the internal op. Core i's slice of
// the buffer is Data[i*bytesPerCore : (i+1)*bytesPerCore].
func (s *System) transferOp(dir core.Direction, b *Buffer, cores []int, bytesPerCore, mramOff uint64) (core.Op, error) {
	if b == nil {
		return core.Op{}, fmt.Errorf("pimmmu: nil buffer")
	}
	if uint64(len(b.Data)) < uint64(len(cores))*bytesPerCore {
		return core.Op{}, fmt.Errorf("pimmmu: buffer holds %d bytes, transfer needs %d",
			len(b.Data), uint64(len(cores))*bytesPerCore)
	}
	op := core.Op{Dir: dir, BytesPerCore: bytesPerCore, MRAMOffset: mramOff}
	for i, c := range cores {
		op.Cores = append(op.Cores, c)
		op.DRAMAddrs = append(op.DRAMAddrs, b.Addr+uint64(i)*bytesPerCore)
	}
	if err := op.Validate(s.inner.Cfg.PIM); err != nil {
		return core.Op{}, err
	}
	return op, nil
}

// ToPIM copies bytesPerCore bytes from the buffer to each listed core's
// MRAM at mramOff — the dpu_push_xfer / pim_mmu_transfer operation of
// Fig. 10. The copy is functional (MRAM contents update) and timed.
func (s *System) ToPIM(b *Buffer, cores []int, bytesPerCore, mramOff uint64) (Result, error) {
	op, err := s.transferOp(core.DRAMToPIM, b, cores, bytesPerCore, mramOff)
	if err != nil {
		return Result{}, err
	}
	for i, c := range cores {
		s.inner.Device.WriteMRAM(c, mramOff, b.Data[uint64(i)*bytesPerCore:uint64(i+1)*bytesPerCore])
	}
	r := s.inner.RunTransfer(op)
	return resultOf(r.Bytes, r.Duration), nil
}

// FromPIM copies bytesPerCore bytes from each listed core's MRAM at
// mramOff back into the buffer.
func (s *System) FromPIM(b *Buffer, cores []int, bytesPerCore, mramOff uint64) (Result, error) {
	op, err := s.transferOp(core.PIMToDRAM, b, cores, bytesPerCore, mramOff)
	if err != nil {
		return Result{}, err
	}
	for i, c := range cores {
		copy(b.Data[uint64(i)*bytesPerCore:uint64(i+1)*bytesPerCore],
			s.inner.Device.ReadMRAM(c, mramOff, int(bytesPerCore)))
	}
	r := s.inner.RunTransfer(op)
	return resultOf(r.Bytes, r.Duration), nil
}

// MRAM returns n bytes of a core's MRAM at off — what a DPU kernel would
// read.
func (s *System) MRAM(coreID int, off uint64, n int) []byte {
	return s.inner.Device.ReadMRAM(coreID, off, n)
}

// WriteMRAM stores bytes into a core's MRAM — what a DPU kernel would
// write.
func (s *System) WriteMRAM(coreID int, off uint64, data []byte) {
	s.inner.Device.WriteMRAM(coreID, off, data)
}

// RunKernel advances simulated time by a DPU kernel of the given cycle
// count (350 MHz cores, SPMD lockstep).
func (s *System) RunKernel(cycles int64) time.Duration {
	d := s.inner.Device.KernelTime(cycles)
	s.inner.Eng.RunUntil(s.inner.Eng.Now() + d)
	return time.Duration(d / clock.Nanosecond)
}

// Memcpy performs a timed DRAM->DRAM copy between fresh buffers (the
// Fig. 14 microbenchmark). It is timing-only: no functional bytes move.
func (s *System) Memcpy(bytes uint64) Result {
	r := s.inner.RunMemcpy(bytes)
	return resultOf(r.Bytes, r.Duration)
}

// CompeteCompute launches n compute-bound (spin-lock-like) contender
// threads (Fig. 13a). Call the returned stop function to retire them.
func (s *System) CompeteCompute(n int) (stop func()) {
	base := s.inner.Alloc(uint64(n) * (16 << 10))
	st := s.inner.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
		return contend.Spin(st, base+uint64(i)*(16<<10))
	})
	return st.Stop
}

// Intensity levels for CompeteMemory.
const (
	IntensityLow      = "low"
	IntensityMedium   = "medium"
	IntensityHigh     = "high"
	IntensityVeryHigh = "veryhigh"
)

// CompeteMemory launches n memory-bound contender threads at the given
// intensity (Fig. 13b).
func (s *System) CompeteMemory(n int, intensity string) (stop func(), err error) {
	var level contend.Intensity
	switch intensity {
	case IntensityLow:
		level = contend.Low
	case IntensityMedium:
		level = contend.Medium
	case IntensityHigh:
		level = contend.High
	case IntensityVeryHigh:
		level = contend.VeryHigh
	default:
		return nil, fmt.Errorf("pimmmu: unknown intensity %q", intensity)
	}
	const footprint = 64 << 20
	base := s.inner.Alloc(uint64(n) * footprint)
	st := s.inner.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
		return contend.MemoryHog(st, base+uint64(i)*footprint, footprint, level)
	})
	return st.Stop, nil
}

// EnergyReport summarizes energy since the system was created.
type EnergyReport struct {
	// TotalJoules is the full-system energy.
	TotalJoules float64
	// StaticJoules is the leakage/background share.
	StaticJoules float64
	// AvgWatts is the average system power.
	AvgWatts float64
	// BytesPerJoule is the transfer energy-efficiency metric of Fig. 15.
	BytesPerJoule float64
}

// Energy evaluates the energy model from system creation to now, judging
// efficiency against the given byte count (pass the bytes your transfers
// moved).
func (s *System) Energy(bytesMoved uint64) EnergyReport {
	cur := s.inner.Activity()
	b := s.inner.EnergyOver(s.start, cur)
	wall := (cur.Wall - s.start.Wall).Seconds()
	rep := EnergyReport{
		TotalJoules:  b.Total(),
		StaticJoules: b.Static(),
	}
	if wall > 0 {
		rep.AvgWatts = b.Total() / wall
	}
	rep.BytesPerJoule = energy.EfficiencyBytesPerJoule(bytesMoved, b)
	return rep
}

// MemStats summarizes memory-system counters.
type MemStats struct {
	DRAMReadBytes   uint64
	DRAMWriteBytes  uint64
	PIMReadBytes    uint64
	PIMWriteBytes   uint64
	DRAMRowHitRate  float64
	PIMRowHitRate   float64
	LLCHitRate      float64
	PerPIMChannelWr []uint64
}

// Stats snapshots the memory-system counters.
func (s *System) Stats() MemStats {
	ds := s.inner.Mem.DRAM.Stats()
	ps := s.inner.Mem.PIM.Stats()
	st := MemStats{
		DRAMReadBytes:  ds.BytesRead(),
		DRAMWriteBytes: ds.BytesWritten(),
		PIMReadBytes:   ps.BytesRead(),
		PIMWriteBytes:  ps.BytesWritten(),
		LLCHitRate:     s.inner.Mem.LLC.Stats().HitRate(),
	}
	var hits, total uint64
	for _, c := range ds.Channels {
		hits += c.RowHits
		total += c.RowHits + c.RowMisses + c.RowConflicts
	}
	if total > 0 {
		st.DRAMRowHitRate = float64(hits) / float64(total)
	}
	hits, total = 0, 0
	for _, c := range ps.Channels {
		hits += c.RowHits
		total += c.RowHits + c.RowMisses + c.RowConflicts
		st.PerPIMChannelWr = append(st.PerPIMChannelWr, c.BytesWritten)
	}
	if total > 0 {
		st.PIMRowHitRate = float64(hits) / float64(total)
	}
	return st
}

// Internal exposes the underlying machine for the in-repo benchmark
// harness; external users should not rely on it.
func (s *System) Internal() *system.System { return s.inner }

// LineBytes is the transfer granularity (one cache line / DDR4 burst).
const LineBytes = mem.LineBytes
