// Golden-trace regression tests: the DDR4 command stream a design
// issues for a fixed small transfer is part of the simulator's
// contract. Each golden file pins the per-channel command counts, the
// protocol-check verdict, and the head of PIM channel 0's stream
// (cmd/pimmu-trace's view); any timing-model or scheduler change that
// moves a single command shows up as a diff. Regenerate deliberately
// with:
//
//	go test -run Golden -update .
package pimmmu_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/sweep"
	"repro/internal/system"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// cmdRecorder captures one channel's command stream.
type cmdRecorder struct {
	events []dram.CmdEvent
	counts map[dram.Cmd]int
}

func (r *cmdRecorder) Command(_ int, e dram.CmdEvent) {
	r.events = append(r.events, e)
	r.counts[e.Cmd]++
}

// goldenHead is how many channel-0 commands each golden file pins.
const goldenHead = 48

// commandStream runs a 128 KiB DRAM->PIM transfer on the design with
// every PIM channel observed and renders the pimmu-trace-equivalent
// view of it. shards selects the event-engine mode (0 plain, >= 1
// sharded) and coreLanes the per-core lane count; the rendering must
// not depend on either.
func commandStream(d system.Design, shards, coreLanes int) string {
	cfg := system.DefaultConfig(d)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	s := system.MustNew(cfg)
	chans := cfg.Mem.PIM.Geometry.Channels
	recs := make([]*cmdRecorder, chans)
	for i := range recs {
		recs[i] = &cmdRecorder{counts: map[dram.Cmd]int{}}
		s.Mem.PIM.Channel(i).Observe(recs[i])
	}
	chk := dram.NewChecker(cfg.Mem.PIM)
	s.Mem.PIM.Channel(0).Observe(observerPair{recs[0], chk})

	per := (128 << 10) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	res := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))

	var b strings.Builder
	fmt.Fprintf(&b, "design %v DRAM->PIM %d bytes %d ps\n", d, res.Bytes, res.Duration)
	for i, r := range recs {
		fmt.Fprintf(&b, "pim[%d] n=%d ACT=%d PRE=%d RD=%d WR=%d REF=%d\n",
			i, len(r.events),
			r.counts[dram.CmdACT], r.counts[dram.CmdPRE],
			r.counts[dram.CmdRD], r.counts[dram.CmdWR], r.counts[dram.CmdREF])
	}
	fmt.Fprintf(&b, "protocol violations=%d\n", len(chk.Violations()))
	head := goldenHead
	if head > len(recs[0].events) {
		head = len(recs[0].events)
	}
	fmt.Fprintf(&b, "-- pim[0] head (%d) --\n", head)
	for _, e := range recs[0].events[:head] {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return b.String()
}

// contendedStream is the Fig. 13-style golden workload: a 128 KiB
// software-baseline DRAM->PIM transfer co-located with four spin
// contenders and two medium-intensity memory hogs, so the command
// stream pins CPU-thread scheduling, contender interference, and the
// write path together — the exact traffic core-lane refactors touch.
// The rendering must not depend on shards or coreLanes.
func contendedStream(shards, coreLanes int) string {
	cfg := system.DefaultConfig(system.Base)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	s := system.MustNew(cfg)

	chans := cfg.Mem.PIM.Geometry.Channels
	pimRecs := make([]*cmdRecorder, chans)
	for i := range pimRecs {
		pimRecs[i] = &cmdRecorder{counts: map[dram.Cmd]int{}}
		s.Mem.PIM.Channel(i).Observe(pimRecs[i])
	}
	dramRec := &cmdRecorder{counts: map[dram.Cmd]int{}}
	chk := dram.NewChecker(cfg.Mem.DRAM)
	s.Mem.DRAM.Channel(0).Observe(observerPair{dramRec, chk})

	const (
		nSpin   = 4
		nHog    = 2
		wset    = 16 << 10
		hogFoot = 4 << 20
	)
	spinBase := s.Alloc(nSpin * wset)
	hogBase := s.Alloc(nHog * hogFoot)
	st := s.Contenders(nSpin, func(i int, st *contend.Stopper) cpu.Program {
		return contend.Spin(st, spinBase+uint64(i)*wset)
	})
	// The hogs share the spin contenders' stopper so one Stop quiesces
	// everything.
	for i := 0; i < nHog; i++ {
		base := hogBase + uint64(i)*hogFoot
		s.CPU.Spawn(fmt.Sprintf("hog-%d", i),
			contend.MemoryHog(st, base, hogFoot, contend.Medium), nil)
	}

	per := (128 << 10) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	res := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
	st.Stop()

	var b strings.Builder
	fmt.Fprintf(&b, "design %v contended DRAM->PIM %d bytes %d ps (%d spin + %d hog)\n",
		system.Base, res.Bytes, res.Duration, nSpin, nHog)
	for i, r := range pimRecs {
		fmt.Fprintf(&b, "pim[%d] n=%d ACT=%d PRE=%d RD=%d WR=%d REF=%d\n",
			i, len(r.events),
			r.counts[dram.CmdACT], r.counts[dram.CmdPRE],
			r.counts[dram.CmdRD], r.counts[dram.CmdWR], r.counts[dram.CmdREF])
	}
	fmt.Fprintf(&b, "dram[0] n=%d ACT=%d PRE=%d RD=%d WR=%d REF=%d\n",
		len(dramRec.events),
		dramRec.counts[dram.CmdACT], dramRec.counts[dram.CmdPRE],
		dramRec.counts[dram.CmdRD], dramRec.counts[dram.CmdWR], dramRec.counts[dram.CmdREF])
	fmt.Fprintf(&b, "protocol violations=%d\n", len(chk.Violations()))
	head := goldenHead
	if head > len(dramRec.events) {
		head = len(dramRec.events)
	}
	fmt.Fprintf(&b, "-- dram[0] head (%d) --\n", head)
	for _, e := range dramRec.events[:head] {
		fmt.Fprintf(&b, "%s\n", e)
	}
	return b.String()
}

// TestGoldenContendedStream pins the contender-heavy command stream
// against its golden file on the default (plain) engine, with the same
// worker-count stability gate as the transfer goldens; the lane-topology
// invariants in sharded_test.go pin the sharded renderings bit-equal to
// this one.
func TestGoldenContendedStream(t *testing.T) {
	serial := sweep.MapN(2, 1, func(int) string { return contendedStream(0, 0) })
	parallel := sweep.MapN(2, 4, func(int) string { return contendedStream(0, 0) })
	if serial[0] != serial[1] || serial[0] != parallel[0] || serial[0] != parallel[1] {
		t.Fatal("contended command stream not stable across reruns/worker counts")
	}
	path := filepath.Join("testdata", "cmdstream_contended.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(serial[0]), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update .` to create)", err)
	}
	if string(want) != serial[0] {
		t.Errorf("contended command stream diverged from %s\n--- got ---\n%s--- want ---\n%s",
			path, serial[0], want)
	}
}

// observerPair fans one channel's commands to two observers.
type observerPair [2]dram.Observer

func (m observerPair) Command(ch int, e dram.CmdEvent) {
	m[0].Command(ch, e)
	m[1].Command(ch, e)
}

// goldenName maps a design to its golden file.
func goldenName(d system.Design) string {
	name := map[system.Design]string{system.Base: "base", system.PIMMMU: "pim-mmu"}[d]
	return filepath.Join("testdata", "cmdstream_"+name+".golden")
}

// TestGoldenCommandStream compares each design's command stream to its
// committed golden file, and requires the rendering to be bit-stable
// across reruns and across sweep worker counts.
func TestGoldenCommandStream(t *testing.T) {
	designs := []system.Design{system.Base, system.PIMMMU}
	// Stability first: render every design serially and in a parallel
	// sweep; the observers live inside each job's own machine, so worker
	// count must not matter.
	// Goldens pin the default (plain, Shards=0) engine; sharded_test.go
	// separately pins sharded renderings bit-equal to these.
	serial := sweep.MapN(len(designs), 1, func(i int) string { return commandStream(designs[i], 0, 0) })
	parallel := sweep.MapN(len(designs), 4, func(i int) string { return commandStream(designs[i], 0, 0) })
	for i, d := range designs {
		if serial[i] != parallel[i] {
			t.Fatalf("%v: command stream differs between worker counts", d)
		}
	}
	for i, d := range designs {
		path := goldenName(d)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(serial[i]), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v: %v (run `go test -run Golden -update .` to create)", d, err)
		}
		if string(want) != serial[i] {
			t.Errorf("%v: command stream diverged from %s\n--- got ---\n%s--- want ---\n%s",
				d, path, serial[i], want)
		}
	}
}
